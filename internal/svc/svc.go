// Package svc is the asynchronous client front-end over a universal
// construction: clients Submit operations and get back Futures; per-shard
// consumer threads drain the submission rings and push whole batches into
// the construction through one combiner handoff (core.PREP.ExecuteBatch),
// amortizing the contended logTail CAS and combiner acquisition over the
// batch.
//
// Completion and durability are decoupled (delay-free style): Future.Wait
// returns as soon as the operation has executed and its result is known,
// while Future.Durable additionally blocks until the operation would survive
// a crash — an explicit persistence barrier the client pays only when it
// needs the guarantee.
//
// The ring is a fixed-size MPSC queue in simulated node-local volatile
// memory, so producers pay realistic coherence costs for the tail CAS and
// the consumer reads entries at local latency. Results travel host-side
// through the Future (the simulated machine would return them through a
// completion ring; the virtual-time cost of that path is the consumer's
// stores, which the entry writes already charge).
package svc

import (
	"fmt"

	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/numa"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Ring memory layout (word offsets). Head and tail live on separate cache
// lines; each entry occupies one line.
const (
	ringHead    = 0                    // consumer cursor (plain store)
	ringTail    = nvm.WordsPerLine     // producer cursor (CAS)
	ringEntries = 2 * nvm.WordsPerLine // first entry
	entryWords  = nvm.WordsPerLine
	entryState  = 0
	entryCode   = 1
	entryA0     = 2
	entryA1     = 3
	entryInvid  = 4
)

// InvocationID packing widths: epoch+1 occupies the top 8 bits, shard+1 the
// next 16, seq+1 the low 40. A component past its ceiling would silently
// alias another (epoch, shard, seq) triple — two distinct operations with
// one invocation id, which breaks the exactly-once dedup — so New and the
// stamp path reject out-of-range components instead of wrapping.
const (
	// MaxInvidEpoch is the largest valid Config.InvidEpoch (epoch+1 must
	// fit 8 bits).
	MaxInvidEpoch = 1<<8 - 2
	// MaxInvidShard is the largest valid shard index (shard+1 must fit 16
	// bits), so a detectable service holds at most MaxInvidShard+1 rings.
	MaxInvidShard = 1<<16 - 2
	// MaxInvidSeq is the largest valid per-shard sequence number (seq+1
	// must fit 40 bits): ~1.1e12 operations per ring per epoch.
	MaxInvidSeq = 1<<40 - 2
)

// InvocationID builds the client-assigned invocation id for the seq-th
// operation submitted on shard during service epoch epoch. Every component
// is biased by one so a valid id is never zero (zero means "not
// detectable" to the engine), and the epoch salt keeps ids from distinct
// service generations — e.g. before and after a crash — disjoint.
//
// Components must respect MaxInvidEpoch/MaxInvidShard/MaxInvidSeq; the
// packing silently corrupts beyond them. New validates epoch and shard
// bounds up front, the submit path checks seq — callers building ids by
// hand (recovery resume plans) stay inside the ranges New accepted.
func InvocationID(epoch uint64, shard int, seq uint64) uint64 {
	return (epoch+1)<<56 | (uint64(shard)+1)<<40 | (seq + 1)
}

// Batcher is the batched execution path of a construction. core.PREP
// implements it; constructions that don't are driven per-op.
type Batcher interface {
	ExecuteBatch(t *sim.Thread, tid int, ops []uc.Op, res []uint64) uint64
}

// DurabilityWaiter turns a Batcher durability mark into a barrier.
type DurabilityWaiter interface {
	AwaitDurable(t *sim.Thread, mark uint64)
}

// Future is the handle for one submitted operation. Fields are written by
// the service only; readers use them after Wait (or Done reports true).
type Future struct {
	// Result is the operation's return value, valid once Done.
	Result uint64
	// Done is set by the consumer after the operation executed.
	Done bool
	// Mark is the durability mark of the batch that carried the operation
	// (0 when the construction has no batched path or the op was read-only).
	Mark uint64
	// ArrivalNS and DoneNS bracket the operation's life in virtual time:
	// arrival is when the (possibly open-loop) client generated it, DoneNS
	// when its result was delivered. DoneNS − ArrivalNS is the latency a
	// coordinated-omission-free measurement wants.
	ArrivalNS uint64
	DoneNS    uint64
	// Invid is the invocation id the operation was stamped with (0 unless
	// Config.Detect). After a crash, recovery's resolved map is keyed by it.
	Invid uint64
	// ExecNS is the instant the consumer drained the operation's batch —
	// the earliest its execution can have started. [ExecNS, DoneNS] brackets
	// the operation's linearization point far tighter than the arrival
	// window; history checkers want it.
	ExecNS uint64

	r *ring // the submission ring (and engine binding) that carried the op
}

// Wait blocks (spinning in virtual time) until the future completes and
// returns its result.
func (f *Future) Wait(t *sim.Thread) uint64 {
	var b spin
	for !f.Done {
		b.spin(t, 1024)
	}
	return f.Result
}

// Durable waits for completion and then for the operation's durability: on
// return the operation's effect would survive a crash at any later instant.
// For constructions without a DurabilityWaiter it is identical to Wait.
func (f *Future) Durable(t *sim.Thread) uint64 {
	res := f.Wait(t)
	if f.r.waiter != nil && f.Mark != 0 {
		f.r.waiter.AwaitDurable(t, f.Mark)
	}
	return res
}

// Config configures a Service.
type Config struct {
	// Engine executes operations; if it also implements Batcher, drained
	// batches go through ExecuteBatch, otherwise one Execute per op.
	// Exactly one of Engine and Engines must be set.
	Engine uc.UC
	// Engines binds each submission ring to its own engine: ring s drains
	// into Engines[s] — S independent combiner pipelines behind one service
	// front-end, the sharded deployment's single-machine form. Length must
	// equal Shards. Each engine's batched path (Batcher) and durability
	// barrier (DurabilityWaiter) are resolved independently. When set,
	// producers are expected to route operations to rings by key
	// (Service.Routed); nothing enforces it here — the routing invariant is
	// the router's contract, checked end to end by linearize.CheckComposition.
	Engines []uc.UC
	// Topology places each shard's ring on the consumer's node.
	Topology numa.Topology
	// Shards is the number of submission rings (and consumer threads).
	// Shard s's consumer runs as worker tid s; spawn it on Topology.NodeOf(s).
	Shards int
	// RingSize is the per-shard ring capacity in entries (power of two).
	RingSize uint64
	// MaxBatch caps how many contiguous entries one drain hands to
	// ExecuteBatch; 0 means core.MaxBatch-compatible 64.
	MaxBatch int
	// NamePrefix namespaces the ring memories. Memory names are global to a
	// System and survive Recover, so a service built on a recovered system
	// must use a fresh prefix (e.g. "svc2") to avoid clashing with the
	// pre-crash generation's rings.
	NamePrefix string
	// Batched disables the batched path when false even if Engine implements
	// Batcher (for per-op baselines).
	Batched bool
	// OnComplete, if set, is invoked for every completed future (after its
	// fields are final). The open-loop harness hooks latency histograms here.
	OnComplete func(shard int, f *Future)
	// Detect stamps every submission with a unique invocation id
	// (InvocationID) so a detectable engine (core.Config.Detect) durably
	// records each update's fate and recovery can resolve the in-flight
	// window to exactly-once semantics. Off, no id is stamped or carried
	// and the ring traffic is identical to a build without the feature.
	Detect bool
	// InvidEpoch salts the invocation ids. Distinct service generations
	// over one machine lifetime — e.g. pre-crash and resumed — must use
	// distinct epochs so their ids never collide.
	InvidEpoch uint64
}

// Service owns the per-shard submission rings.
type Service struct {
	cfg     Config
	met     *metrics.Registry
	rings   []*ring
	stopped bool
}

// ring is one shard's MPSC submission queue plus its host-side future table
// and engine binding (per-ring with Config.Engines, shared otherwise).
type ring struct {
	mem     *nvm.Memory
	size    uint64
	futures []*Future
	// eng executes the ring's operations; batcher is its batched path (nil
	// when disabled or unimplemented), waiter its durability barrier.
	eng     uc.UC
	batcher Batcher
	waiter  DurabilityWaiter
	// submitted, drained and completed are host-side tallies the crash
	// harness reads to size the in-flight window at a crash cut: entries in
	// [completed, drained) had reached the engine, entries in
	// [drained, submitted) were still queued and so provably never executed.
	submitted uint64
	drained   uint64
	completed uint64
}

// fullMark is the nonzero state value marking entry idx written; the parity
// flip per lap means a previous lap's mark can never read as full.
func (r *ring) fullMark(idx uint64) uint64 { return 1 + (idx/r.size)%2 }

func (r *ring) entryOff(idx uint64) uint64 {
	return ringEntries + (idx%r.size)*entryWords
}

// New builds the service and its rings on sys.
func New(t *sim.Thread, sys *nvm.System, cfg Config) (*Service, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("svc: Shards must be positive, got %d", cfg.Shards)
	}
	if cfg.RingSize == 0 || cfg.RingSize&(cfg.RingSize-1) != 0 {
		return nil, fmt.Errorf("svc: RingSize must be a power of two, got %d", cfg.RingSize)
	}
	if (cfg.Engine == nil) == (cfg.Engines == nil) {
		return nil, fmt.Errorf("svc: exactly one of Engine and Engines must be set")
	}
	if cfg.Engines != nil && len(cfg.Engines) != cfg.Shards {
		return nil, fmt.Errorf("svc: %d engines for %d rings (lengths must match)",
			len(cfg.Engines), cfg.Shards)
	}
	if cfg.Detect {
		// Reject packings InvocationID would corrupt (see MaxInvid*).
		if cfg.Shards-1 > MaxInvidShard {
			return nil, fmt.Errorf("svc: %d shards exceed the invocation-id shard field (max %d)",
				cfg.Shards, MaxInvidShard+1)
		}
		if cfg.InvidEpoch > MaxInvidEpoch {
			return nil, fmt.Errorf("svc: InvidEpoch %d exceeds the invocation-id epoch field (max %d)",
				cfg.InvidEpoch, MaxInvidEpoch)
		}
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "svc"
	}
	s := &Service{cfg: cfg, met: sys.Metrics()}
	for shard := 0; shard < cfg.Shards; shard++ {
		eng := cfg.Engine
		if cfg.Engines != nil {
			eng = cfg.Engines[shard]
		}
		mem := sys.NewMemory(fmt.Sprintf("%s.ring%d", cfg.NamePrefix, shard),
			nvm.Volatile, cfg.Topology.NodeOf(shard), ringEntries+cfg.RingSize*entryWords)
		r := &ring{
			mem:     mem,
			size:    cfg.RingSize,
			futures: make([]*Future, cfg.RingSize),
			eng:     eng,
		}
		if cfg.Batched {
			r.batcher, _ = eng.(Batcher)
		}
		r.waiter, _ = eng.(DurabilityWaiter)
		s.rings = append(s.rings, r)
	}
	return s, nil
}

// Client returns a submission handle bound to one shard. Any number of
// producer threads may share a client (the ring is MPSC).
type Client struct {
	svc   *Service
	shard int
	r     *ring
}

// Client returns the handle for shard.
func (s *Service) Client(shard int) *Client {
	return &Client{svc: s, shard: shard, r: s.rings[shard]}
}

// RoutedClient dispatches each submission to a ring chosen from the
// operation's key — the client-side half of the sharded deployment: the
// route function (typically shard.Router.RouteOp) is pure host-side state,
// so routing costs no virtual time, exactly like a client library picking a
// connection before the request leaves the process.
type RoutedClient struct {
	clients []*Client
	route   func(op uc.Op) int
}

// Routed returns a routing submission handle over all of the service's
// rings. route must return an index in [0, Shards) for every operation.
func (s *Service) Routed(route func(op uc.Op) int) *RoutedClient {
	rc := &RoutedClient{route: route}
	for shard := 0; shard < s.cfg.Shards; shard++ {
		rc.clients = append(rc.clients, s.Client(shard))
	}
	return rc
}

// TrySubmit routes op by its key and attempts to enqueue it on the owning
// shard's ring.
func (rc *RoutedClient) TrySubmit(t *sim.Thread, op uc.Op, arrivalNS uint64) (*Future, bool) {
	return rc.clients[rc.route(op)].TrySubmit(t, op, arrivalNS)
}

// Submit routes op by its key and enqueues it on the owning shard's ring,
// blocking while that ring is full.
func (rc *RoutedClient) Submit(t *sim.Thread, op uc.Op) *Future {
	return rc.clients[rc.route(op)].Submit(t, op)
}

// TrySubmit attempts to enqueue op, stamping the future with arrivalNS. It
// fails (nil, false) when the ring is full — open-loop injectors keep their
// own overflow queue rather than blocking the arrival timeline.
func (c *Client) TrySubmit(t *sim.Thread, op uc.Op, arrivalNS uint64) (*Future, bool) {
	r := c.r
	for {
		tail := r.mem.Load(t, ringTail)
		if tail-r.mem.Load(t, ringHead) >= r.size {
			c.svc.met.RingFullStalls++
			return nil, false
		}
		if !r.mem.CAS(t, ringTail, tail, tail+1) {
			continue
		}
		f := &Future{r: r, ArrivalNS: arrivalNS}
		r.futures[tail%r.size] = f
		off := r.entryOff(tail)
		r.mem.Store(t, off+entryCode, op.Code)
		r.mem.Store(t, off+entryA0, op.A0)
		r.mem.Store(t, off+entryA1, op.A1)
		if c.svc.cfg.Detect {
			if tail > MaxInvidSeq {
				panic("svc: per-shard sequence number exceeds the invocation-id seq field")
			}
			f.Invid = InvocationID(c.svc.cfg.InvidEpoch, c.shard, tail)
			r.mem.Store(t, off+entryInvid, f.Invid)
		}
		r.mem.Store(t, off+entryState, r.fullMark(tail))
		r.submitted++
		c.svc.met.RingSubmits++
		return f, true
	}
}

// Submit enqueues op, blocking (with backoff) while the ring is full. The
// arrival stamp is the submission instant.
func (c *Client) Submit(t *sim.Thread, op uc.Op) *Future {
	var b spin
	for {
		if f, ok := c.TrySubmit(t, op, t.Clock()); ok {
			return f
		}
		b.spin(t, 4096)
	}
}

// Submitted, Drained and Completed report the shard's host-side tallies.
func (c *Client) Submitted() uint64 { return c.r.submitted }
func (c *Client) Drained() uint64   { return c.r.drained }
func (c *Client) Completed() uint64 { return c.r.completed }

// Stop asks every consumer to exit once its ring is drained. Host-side: the
// caller decides the machine is done (e.g. all injectors finished), which no
// simulated agent needs to observe.
func (s *Service) Stop() { s.stopped = true }

// serveIdleCost is the virtual cost of one empty consumer poll.
const serveIdleCost = 200

// Serve is shard's consumer loop: drain up to MaxBatch contiguous submitted
// entries, execute them as one batch, complete the futures, repeat. It runs
// as worker tid shard and returns after Stop once the ring is empty. With
// per-ring engines (Config.Engines) the batch goes to the ring's own engine,
// still as worker tid shard — an engine bound to ring s must therefore be
// configured with Workers > s.
func (s *Service) Serve(t *sim.Thread, shard int) {
	r := s.rings[shard]
	ops := make([]uc.Op, s.cfg.MaxBatch)
	res := make([]uint64, s.cfg.MaxBatch)
	futs := make([]*Future, s.cfg.MaxBatch)
	for {
		head := r.mem.Load(t, ringHead)
		n := 0
		for n < s.cfg.MaxBatch {
			idx := head + uint64(n)
			off := r.entryOff(idx)
			// Stop at the first entry not yet fully written — including a
			// slot a producer has CASed but not filled.
			if r.mem.Load(t, off+entryState) != r.fullMark(idx) {
				break
			}
			ops[n] = uc.Op{
				Code: r.mem.Load(t, off+entryCode),
				A0:   r.mem.Load(t, off+entryA0),
				A1:   r.mem.Load(t, off+entryA1),
			}
			if s.cfg.Detect {
				ops[n].Invid = r.mem.Load(t, off+entryInvid)
			}
			futs[n] = r.futures[idx%r.size]
			n++
		}
		if n == 0 {
			if s.stopped {
				return
			}
			t.Step(serveIdleCost)
			continue
		}
		r.mem.Store(t, ringHead, head+uint64(n))
		r.drained = head + uint64(n)
		execNS := t.Clock()
		var mark uint64
		if r.batcher != nil {
			mark = r.batcher.ExecuteBatch(t, shard, ops[:n], res[:n])
		} else {
			for i := 0; i < n; i++ {
				res[i] = r.eng.Execute(t, shard, ops[i])
			}
		}
		for i := 0; i < n; i++ {
			f := futs[i]
			f.Result = res[i]
			f.Mark = mark
			f.ExecNS = execNS
			f.DoneNS = t.Clock()
			f.Done = true
			r.completed++
			if s.cfg.OnComplete != nil {
				s.cfg.OnComplete(shard, f)
			}
		}
	}
}

// spin is truncated exponential backoff (mirrors core's; kept local so the
// engine internals stay unexported).
type spin struct{ cur uint64 }

func (b *spin) spin(t *sim.Thread, cap uint64) {
	if b.cur == 0 {
		b.cur = 16
	}
	t.Step(b.cur)
	if b.cur < cap {
		b.cur *= 2
	}
}
