package svc_test

import (
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/svc"
	"prepuc/internal/uc"
)

func topo() numa.Topology { return numa.Topology{Nodes: 2, ThreadsPerNode: 4} }

type world struct {
	t      *testing.T
	sys    *nvm.System
	p      *core.PREP
	s      *svc.Service
	shards int
}

func newWorld(t *testing.T, mode core.Mode, eps uint64, shards int, batched bool, seed int64) *world {
	t.Helper()
	sch := sim.New(seed)
	sys := nvm.NewSystem(sch, nvm.Config{Costs: sim.UnitCosts()})
	w := &world{t: t, sys: sys, shards: shards}
	var err error
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		obj := seq.HashMapType(64)
		w.p, err = core.New(th, sys, core.Config{
			Mode: mode, Topology: topo(), Workers: shards,
			LogSize: 1024, Epsilon: eps,
			Factory: obj.New, Attacher: obj.Attach, HeapWords: 1 << 20,
		})
		if err != nil {
			return
		}
		w.s, err = svc.New(th, sys, svc.Config{
			Engine: w.p, Topology: topo(), Shards: shards,
			RingSize: 256, MaxBatch: 32, Batched: batched,
		})
	})
	sch.Run()
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return w
}

// run spawns the consumers plus fn-per-producer and drives the machine until
// everything drains; returns the largest consumer finish clock.
func (w *world) run(seed int64, producers int, fn func(th *sim.Thread, pid int)) uint64 {
	w.t.Helper()
	sch := sim.New(seed)
	w.sys.SetScheduler(sch)
	persistent := w.p.Config().Mode.Persistent()
	if persistent {
		w.p.SpawnPersistence(0)
	}
	shards := w.shards
	consumersLive := shards
	var endNS uint64
	for shard := 0; shard < shards; shard++ {
		shard := shard
		sch.Spawn("consumer", topo().NodeOf(shard), 0, func(th *sim.Thread) {
			w.s.Serve(th, shard)
			if th.Clock() > endNS {
				endNS = th.Clock()
			}
			consumersLive--
			if consumersLive == 0 && persistent {
				w.p.StopPersistence(th)
			}
		})
	}
	producersLive := producers
	for pid := 0; pid < producers; pid++ {
		pid := pid
		sch.Spawn("producer", topo().NodeOf(pid%8), 0, func(th *sim.Thread) {
			fn(th, pid)
			producersLive--
			if producersLive == 0 {
				w.s.Stop()
			}
		})
	}
	sch.Run()
	return endNS
}

func TestSubmitExecutesAndCompletes(t *testing.T) {
	const producers, per = 8, 50
	w := newWorld(t, core.Volatile, 0, 2, true, 1)
	futs := make([][]*svc.Future, producers)
	w.run(100, producers, func(th *sim.Thread, pid int) {
		c := w.s.Client(pid % 2)
		for i := uint64(0); i < per; i++ {
			k := uint64(pid)*1000 + i
			f := c.Submit(th, uc.Insert(k, k+7))
			if got := f.Wait(th); got != 1 {
				t.Errorf("producer %d insert(%d) = %d, want 1", pid, k, got)
			}
			futs[pid] = append(futs[pid], f)
		}
	})
	for pid := range futs {
		for i, f := range futs[pid] {
			if !f.Done {
				t.Fatalf("producer %d future %d not done", pid, i)
			}
			if f.DoneNS < f.ArrivalNS {
				t.Fatalf("future completed before it arrived")
			}
		}
	}
	st := w.p.Stats()
	if st.RingSubmits != producers*per {
		t.Errorf("RingSubmits = %d, want %d", st.RingSubmits, producers*per)
	}
	if st.RingBatchedOps != producers*per {
		t.Errorf("RingBatchedOps = %d, want %d", st.RingBatchedOps, producers*per)
	}
	// Read everything back through a direct query thread.
	sch := sim.New(200)
	w.sys.SetScheduler(sch)
	sch.Spawn("query", 0, 0, func(th *sim.Thread) {
		if got := w.p.Execute(th, 0, uc.Size()); got != producers*per {
			t.Errorf("size = %d, want %d", got, producers*per)
		}
		for pid := 0; pid < producers; pid++ {
			for i := uint64(0); i < per; i++ {
				k := uint64(pid)*1000 + i
				if got := w.p.Execute(th, 0, uc.Get(k)); got != k+7 {
					t.Errorf("get(%d) = %d, want %d", k, got, k+7)
				}
			}
		}
	})
	sch.Run()
}

func TestMixedReadWriteBatches(t *testing.T) {
	// Reads submitted after writes of the same key through the same shard
	// must observe them (FIFO ring + in-order batch execution).
	const per = 60
	w := newWorld(t, core.Volatile, 0, 2, true, 3)
	w.run(300, 4, func(th *sim.Thread, pid int) {
		c := w.s.Client(pid % 2)
		for i := uint64(0); i < per; i++ {
			k := uint64(pid)<<20 | i
			c.Submit(th, uc.Insert(k, k+1))
			f := c.Submit(th, uc.Get(k))
			if got := f.Wait(th); got != k+1 {
				t.Errorf("read-after-write via ring: get(%d) = %d, want %d", k, got, k+1)
			}
		}
	})
}

func TestDurableBarrierDurableMode(t *testing.T) {
	// In Durable mode the barrier must be satisfied essentially immediately
	// (persist-before-respond), and marks must be nonzero for updates.
	w := newWorld(t, core.Durable, 64, 2, true, 5)
	w.run(500, 4, func(th *sim.Thread, pid int) {
		c := w.s.Client(pid % 2)
		for i := uint64(0); i < 30; i++ {
			f := c.Submit(th, uc.Insert(uint64(pid)*100+i, i))
			if got := f.Durable(th); got != 1 {
				t.Errorf("durable insert = %d", got)
			}
			if f.Mark == 0 {
				t.Error("update future carries no durability mark")
			}
		}
	})
}

func TestDurableBarrierForcesCycleInBufferedMode(t *testing.T) {
	// Buffered mode with a huge ε: no persistence cycle would happen
	// naturally within this run, so Future.Durable must force one through
	// the boundary-reduction helping path.
	w := newWorld(t, core.Buffered, 512, 2, true, 7)
	w.run(700, 2, func(th *sim.Thread, pid int) {
		c := w.s.Client(pid % 2)
		f := c.Submit(th, uc.Insert(uint64(pid), 1))
		f.Durable(th)
	})
	st := w.p.Stats()
	if st.PersistCycles == 0 {
		t.Error("Durable barrier returned without a persistence cycle in buffered mode")
	}
}

func TestPerOpFallback(t *testing.T) {
	// Batched=false must still complete everything, with zero marks.
	w := newWorld(t, core.Volatile, 0, 2, false, 9)
	w.run(900, 4, func(th *sim.Thread, pid int) {
		c := w.s.Client(pid % 2)
		for i := uint64(0); i < 40; i++ {
			f := c.Submit(th, uc.Insert(uint64(pid)*100+i, i))
			f.Wait(th)
			if f.Mark != 0 {
				t.Error("per-op path produced a durability mark")
			}
		}
	})
	if st := w.p.Stats(); st.RingBatches != 0 {
		t.Errorf("RingBatches = %d on the per-op path", st.RingBatches)
	}
}

// TestBatchedThroughputGain is the deterministic (virtual-time) version of
// the PR's acceptance criterion: at high offered load the batched submission
// path must finish the same operation count in less virtual time than per-op
// execution, because each combiner handoff (and its logTail reservation)
// carries a whole batch. The amortizable overhead is largest where execution
// itself is cheapest, so the volatile engine must show a solid gain; the
// durable engine is replay-flush-bound (per-entry CLWBs dominate either
// way), so there the batched path must merely never lose.
func TestBatchedThroughputGain(t *testing.T) {
	const shards, producers, per = 2, 32, 80
	load := func(mode core.Mode, batched bool) (uint64, float64) {
		eps := uint64(0)
		if mode.Persistent() {
			eps = 64
		}
		w := newWorld(t, mode, eps, shards, batched, 11)
		end := w.run(1100, producers, func(th *sim.Thread, pid int) {
			c := w.s.Client(pid % shards)
			futs := make([]*svc.Future, 0, per)
			for i := uint64(0); i < per; i++ {
				// Fire-and-forget to keep queue depth high; wait at the end.
				futs = append(futs, c.Submit(th, uc.Insert(uint64(pid)<<20|i, i)))
			}
			for _, f := range futs {
				f.Wait(th)
			}
		})
		st := w.p.Stats()
		mean := float64(0)
		if st.RingBatches > 0 {
			mean = float64(st.RingBatchedOps) / float64(st.RingBatches)
		}
		return end, mean
	}

	batchedNS, meanBatch := load(core.Volatile, true)
	perOpNS, _ := load(core.Volatile, false)
	if meanBatch < 1.5 {
		t.Errorf("mean ring batch size %.2f; batching not engaging under load", meanBatch)
	}
	if gain := float64(perOpNS) / float64(batchedNS); gain < 1.10 {
		t.Errorf("volatile batched gain %.3fx (batched %d ns, per-op %d ns); want ≥ 1.10x", gain, batchedNS, perOpNS)
	}
	t.Logf("volatile: batched %d ns vs per-op %d ns (%.2fx), mean batch %.1f",
		batchedNS, perOpNS, float64(perOpNS)/float64(batchedNS), meanBatch)

	dBatchedNS, _ := load(core.Durable, true)
	dPerOpNS, _ := load(core.Durable, false)
	if dBatchedNS > dPerOpNS {
		t.Errorf("durable batched path slower than per-op: %d vs %d virtual ns", dBatchedNS, dPerOpNS)
	}
	t.Logf("durable: batched %d ns vs per-op %d ns (%.2fx)",
		dBatchedNS, dPerOpNS, float64(dPerOpNS)/float64(dBatchedNS))
}

func TestConfigValidation(t *testing.T) {
	sch := sim.New(13)
	sys := nvm.NewSystem(sch, nvm.Config{})
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		if _, err := svc.New(th, sys, svc.Config{Shards: 0, RingSize: 64}); err == nil {
			t.Error("Shards=0 accepted")
		}
		if _, err := svc.New(th, sys, svc.Config{Shards: 1, RingSize: 100}); err == nil {
			t.Error("non-power-of-two RingSize accepted")
		}
	})
	sch.Run()
}

// TestDetectStampsAndCursors covers the detectable-execution plumbing the
// crash harness relies on: with Detect on, the k-th operation submitted
// through a shard carries InvocationID(epoch, shard, k); every future's
// ExecNS (the drain instant) brackets execution from below; and the
// host-side drained cursor tracks submissions through completion.
func TestDetectStampsAndCursors(t *testing.T) {
	const per = 40
	w := newWorld(t, core.Durable, 16, 2, true, 7)
	// Rebuild the service with detection on (newWorld's has it off).
	sch := sim.New(70)
	w.sys.SetScheduler(sch)
	var err error
	sch.Spawn("reboot", 0, 0, func(th *sim.Thread) {
		w.s, err = svc.New(th, w.sys, svc.Config{
			Engine: w.p, Topology: topo(), Shards: w.shards,
			RingSize: 256, MaxBatch: 32, Batched: true,
			NamePrefix: "det", Detect: true, InvidEpoch: 3,
		})
	})
	sch.Run()
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	futs := make([][]*svc.Future, w.shards)
	w.run(700, w.shards, func(th *sim.Thread, pid int) {
		c := w.s.Client(pid) // one producer per shard: seq == submit index
		for i := uint64(0); i < per; i++ {
			k := uint64(pid)<<20 | i
			f := c.Submit(th, uc.Insert(k, k+1))
			f.Wait(th)
			futs[pid] = append(futs[pid], f)
		}
	})
	for shard := range futs {
		for i, f := range futs[shard] {
			want := svc.InvocationID(3, shard, uint64(i))
			if f.Invid != want {
				t.Fatalf("shard %d op %d: invid %#x, want %#x", shard, i, f.Invid, want)
			}
			if f.ExecNS < f.ArrivalNS || f.ExecNS > f.DoneNS {
				t.Fatalf("shard %d op %d: exec stamp %d outside [%d, %d]",
					shard, i, f.ExecNS, f.ArrivalNS, f.DoneNS)
			}
		}
		c := w.s.Client(shard)
		if c.Submitted() != per || c.Drained() != per || c.Completed() != per {
			t.Fatalf("shard %d cursors: submitted=%d drained=%d completed=%d, want all %d",
				shard, c.Submitted(), c.Drained(), c.Completed(), per)
		}
	}
}
