package uc

import (
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// CommitCell is a one-line persistent generation-commit record. Every
// persistent construction in this repository names its NVM memories
// "<prefix>.g<generation>.<role>" and recovers by building the state of one
// generation into a fresh one; the commit cell records which generation is
// the lineage's current recovery source. Word 0 holds committedGeneration+1
// (0 = nothing committed yet — fresh NVM reads zero), flipped with a single
// synchronous line flush only AFTER the new generation's state is fully
// persisted. That ordering makes recovery re-entrant: killed at any event,
// a re-run reads the same committed source, because a generation becomes
// the source only once it is complete.
//
// The cell's memory name is generation-independent, so every generation of
// a lineage reads and writes the same cell.
type CommitCell struct {
	sys *nvm.System
	mem *nvm.Memory
}

// EnsureCommitCell attaches the named commit cell, creating it (one NVM line
// homed on node home) on first use.
func EnsureCommitCell(sys *nvm.System, name string, home int) CommitCell {
	if sys.HasMemory(name) {
		return CommitCell{sys, sys.Memory(name)}
	}
	return CommitCell{sys, sys.NewMemory(name, nvm.NVM, home, nvm.WordsPerLine)}
}

// Commit durably records gen as the lineage's committed generation. The
// synchronous flush means the record is persistent before Commit returns; a
// crash anywhere inside Commit leaves either the old or the new value, both
// of which name a complete generation.
func (c CommitCell) Commit(t *sim.Thread, gen int) {
	c.mem.Store(t, 0, uint64(gen)+1)
	f := c.sys.NewFlusher()
	f.FlushLineSync(t, c.mem, 0)
}

// CommittedGeneration reads the persisted commit record of a recovered
// system, returning fallback when the cell does not exist or was never
// flipped (a crash before the lineage's first commit).
func CommittedGeneration(recSys *nvm.System, name string, fallback int) int {
	if !recSys.HasMemory(name) {
		return fallback
	}
	if w := recSys.Memory(name).PersistedLoad(0); w != 0 {
		return int(w - 1)
	}
	return fallback
}
