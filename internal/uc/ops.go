package uc

// Typed operation constructors. Call sites used to spell operations as raw
// (code, a0, a1) triples — uc.Insert(k, v) — which
// reads fine in the engine (the log stores exactly that) but is noise and an
// argument-order hazard everywhere else. These constructors are the client
// vocabulary; the triple encoding stays an engine detail.

// Get looks a key up in a map, returning its value or NotFound.
func Get(k uint64) Op { return Op{Code: OpGet, A0: k} }

// Contains tests key membership (1 present, 0 absent).
func Contains(k uint64) Op { return Op{Code: OpContains, A0: k} }

// Insert maps k to v, replacing any previous value.
func Insert(k, v uint64) Op { return Op{Code: OpInsert, A0: k, A1: v} }

// Delete removes a key.
func Delete(k uint64) Op { return Op{Code: OpDelete, A0: k} }

// Size reports the number of elements.
func Size() Op { return Op{Code: OpSize} }

// Push pushes v onto a stack.
func Push(v uint64) Op { return Op{Code: OpPush, A0: v} }

// Pop pops the top of a stack, returning NotFound when empty.
func Pop() Op { return Op{Code: OpPop} }

// Top peeks at the top of a stack without removing it.
func Top() Op { return Op{Code: OpTop} }

// Enqueue appends v to a FIFO queue (or inserts into a priority queue).
func Enqueue(v uint64) Op { return Op{Code: OpEnqueue, A0: v} }

// Dequeue removes the head of a FIFO queue, returning NotFound when empty.
func Dequeue() Op { return Op{Code: OpDequeue} }

// Peek reads the head of a FIFO queue without removing it.
func Peek() Op { return Op{Code: OpPeek} }

// DeleteMin removes the minimum of a priority queue.
func DeleteMin() Op { return Op{Code: OpDeleteMin} }

// Min reads the minimum of a priority queue without removing it.
func Min() Op { return Op{Code: OpMin} }
