// Package uc defines the interfaces shared by every universal construction
// in this repository: the shape of a black-box sequential object and the
// ExecuteConcurrent entry point of a universal construction.
//
// Operations are encoded as (code, a0, a1) word triples. The paper's
// PREP-Durable cannot persist std::function wrappers, so it stores raw
// operation identifiers in the log and dispatches through an Execute switch
// provided by the sequential object; we use the same convention for every
// construction. The user-supplied read-only flag of the paper's
// ExecuteConcurrent maps to DataStructure.IsReadOnly.
package uc

import (
	"prepuc/internal/metrics"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
)

// NotFound is the conventional "no value" result.
const NotFound = ^uint64(0)

// Common operation codes. Each sequential object implements the subset that
// makes sense for it and panics on others.
const (
	OpGet uint64 = iota + 1
	OpContains
	OpInsert
	OpDelete
	OpSize
	OpPush
	OpPop
	OpTop
	OpEnqueue
	OpDequeue
	OpPeek
	OpDeleteMin
	OpMin
)

// OpName returns a human-readable name for an operation code.
func OpName(code uint64) string {
	switch code {
	case OpGet:
		return "get"
	case OpContains:
		return "contains"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpSize:
		return "size"
	case OpPush:
		return "push"
	case OpPop:
		return "pop"
	case OpTop:
		return "top"
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	case OpPeek:
		return "peek"
	case OpDeleteMin:
		return "delete-min"
	case OpMin:
		return "min"
	default:
		return "unknown"
	}
}

// opCodes is OpName inverted, built once at init so OpCode is a single map
// lookup instead of a scan that re-renders every name per query.
var opCodes = func() map[string]uint64 {
	m := make(map[string]uint64, OpMin)
	for code := OpGet; code <= OpMin; code++ {
		m[OpName(code)] = code
	}
	return m
}()

// OpCode is the inverse of OpName: it resolves a human-readable operation
// name (as used in workload specs and bench output) back to its code,
// returning 0 for names OpName never produces.
func OpCode(name string) uint64 { return opCodes[name] }

// Op is one encoded operation.
type Op struct {
	Code, A0, A1 uint64
	// Invid is an optional client-assigned invocation identifier for
	// detectable execution. When nonzero, constructions that support
	// operation descriptors (core.Config.Detect) durably record the
	// operation's fate so recovery can answer completed-with-result /
	// never-applied for it. Zero — the zero value, and what every
	// closed-loop benchmark driver passes — requests no detectability and
	// costs nothing.
	Invid uint64
}

// DataStructure is a black-box sequential object. A universal construction
// never looks inside Execute — in particular it cannot interpose flushes
// between the loads and stores Execute performs, which is the constraint
// that drives PREP-UC's whole design.
type DataStructure interface {
	// Execute runs one operation and returns its result.
	Execute(t *sim.Thread, code, a0, a1 uint64) uint64
	// IsReadOnly reports whether the operation with this code leaves the
	// object unchanged (the user-provided read-only hint of the paper).
	IsReadOnly(code uint64) bool
	// Dump emits a sequence of update operations that, replayed in order on
	// a fresh instance, reconstructs the current state. Recovery uses it to
	// clone replicas across memories.
	Dump(t *sim.Thread, emit func(code, a0, a1 uint64))
}

// Factory creates a fresh, empty instance of the sequential object inside
// the given heap. Implementations record their root through the allocator's
// root slot 0 so Attacher can find it after a crash.
type Factory func(t *sim.Thread, a *pmem.Allocator) DataStructure

// Attacher re-opens an instance previously created by the matching Factory
// in a heap that survived a crash.
type Attacher func(t *sim.Thread, a *pmem.Allocator) DataStructure

// Sequential-model names for ObjectType.Model. They are strings rather than
// linearize.Model values because the checker imports this package; the
// harness maps a name to the concrete model.
const (
	ModelSet    = "set"
	ModelQueue  = "queue"
	ModelStack  = "stack"
	ModelPQueue = "pqueue"
)

// ObjectType bundles everything the harness and service layers need to know
// about one sequential object: how to create it, how to re-open it after a
// crash, and which sequential model checks histories driven through it. It
// replaces the parallel Factory/Attacher pairs that used to be threaded
// through every builder signature side by side.
type ObjectType struct {
	// Name identifies the structure in catalogs and output ("hashmap", ...).
	Name string
	// New creates a fresh instance (the former free-standing Factory).
	New Factory
	// Attach re-opens a crashed instance created by New.
	Attach Attacher
	// Model names the sequential specification for the linearizability
	// checker (ModelSet, ModelQueue, ModelStack or ModelPQueue).
	Model string
}

// UC is a universal construction: it turns the sequential object it was
// built around into a linearizable concurrent one.
type UC interface {
	// Execute performs op on behalf of worker tid (the paper's
	// ExecuteConcurrent). It returns the operation's result.
	Execute(t *sim.Thread, tid int, op Op) uint64
}

// Instrumented is implemented by constructions that expose the machine-wide
// metrics registry. Stats snapshots cumulative counters since boot; callers
// isolating a phase subtract two snapshots (metrics.Snapshot.Sub).
type Instrumented interface {
	Stats() metrics.Snapshot
}

// Clone replays src's state into dst via Dump/Execute. Both sides are
// treated as black boxes; this is how recovery instantiates replicas as
// copies of the stable persistent replica.
func Clone(t *sim.Thread, src, dst DataStructure) {
	src.Dump(t, func(code, a0, a1 uint64) {
		dst.Execute(t, code, a0, a1)
	})
}
