package uc

import (
	"testing"

	"prepuc/internal/sim"
)

func TestOpNameCoversAllCodes(t *testing.T) {
	codes := []uint64{OpGet, OpContains, OpInsert, OpDelete, OpSize, OpPush,
		OpPop, OpTop, OpEnqueue, OpDequeue, OpPeek, OpDeleteMin, OpMin}
	seen := map[string]bool{}
	for _, c := range codes {
		name := OpName(c)
		if name == "unknown" {
			t.Errorf("code %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
	}
	if OpName(9999) != "unknown" {
		t.Error("unknown code should map to 'unknown'")
	}
}

// fakeDS is a minimal DataStructure for Clone testing.
type fakeDS struct {
	vals map[uint64]uint64
}

func (f *fakeDS) Execute(t *sim.Thread, code, a0, a1 uint64) uint64 {
	switch code {
	case OpInsert:
		f.vals[a0] = a1
		return 1
	case OpGet:
		v, ok := f.vals[a0]
		if !ok {
			return NotFound
		}
		return v
	}
	return 0
}
func (f *fakeDS) IsReadOnly(code uint64) bool { return code == OpGet }
func (f *fakeDS) Dump(t *sim.Thread, emit func(code, a0, a1 uint64)) {
	for k, v := range f.vals {
		emit(OpInsert, k, v)
	}
}

func TestCloneReplaysDump(t *testing.T) {
	src := &fakeDS{vals: map[uint64]uint64{1: 10, 2: 20, 3: 30}}
	dst := &fakeDS{vals: map[uint64]uint64{}}
	sch := sim.New(1)
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		Clone(th, src, dst)
	})
	sch.Run()
	if len(dst.vals) != 3 {
		t.Fatalf("cloned %d entries, want 3", len(dst.vals))
	}
	for k, v := range src.vals {
		if dst.vals[k] != v {
			t.Errorf("key %d: %d, want %d", k, dst.vals[k], v)
		}
	}
}

func TestNotFoundSentinel(t *testing.T) {
	if NotFound != ^uint64(0) {
		t.Error("NotFound sentinel changed; log-encoded responses depend on it")
	}
}

func TestOpCodeRoundTrip(t *testing.T) {
	for code := OpGet; code <= OpMin; code++ {
		name := OpName(code)
		if name == "unknown" {
			t.Fatalf("code %d has no name", code)
		}
		if got := OpCode(name); got != code {
			t.Errorf("OpCode(OpName(%d)) = %d, want %d", code, got, code)
		}
	}
	if got := OpCode("unknown"); got != 0 {
		t.Errorf("OpCode(\"unknown\") = %d, want 0", got)
	}
	if got := OpCode("no-such-op"); got != 0 {
		t.Errorf("OpCode of bogus name = %d, want 0", got)
	}
}
