// Package workload generates the operation mixes of the paper's evaluation
// (§6): key-set workloads with a configurable read percentage over a
// uniform (or, via KeySkew, Zipfian) key distribution, and 100%-update
// "pair" workloads where every worker alternates an insertion-type
// operation with a removal-type operation (enqueue/dequeue for queues,
// push/pop for stacks).
package workload

import (
	"math/rand"

	"prepuc/internal/uc"
)

// Kind selects the workload family.
type Kind int

const (
	// Set is the map/tree workload: ReadPct% contains/get operations, the
	// rest split evenly between inserts and deletes, keys uniform in
	// [0, KeyRange).
	Set Kind = iota
	// Pairs is the 100% update workload: alternate Push and Pop codes.
	Pairs
)

// Spec describes a workload.
type Spec struct {
	Kind Kind
	// ReadPct is the percentage of read-only operations (Set only).
	ReadPct int
	// KeyRange is the key universe size (Set only). The paper uses 1M keys
	// and prefills to 50%.
	KeyRange uint64
	// KeySkew > 1 draws Set keys from a Zipf distribution with that
	// exponent (key 0 hottest) instead of uniformly; anything ≤ 1 keeps
	// the paper's uniform draw, with an RNG stream identical to before the
	// knob existed.
	KeySkew float64
	// PushCode/PopCode are the update pair (Pairs only).
	PushCode, PopCode uint64
	// Prefill is the number of elements present before measurement.
	Prefill uint64
}

// SetSpec is the paper's uniform set workload.
func SetSpec(readPct int, keyRange uint64) Spec {
	return Spec{Kind: Set, ReadPct: readPct, KeyRange: keyRange, Prefill: keyRange / 2}
}

// PairsSpec is the paper's enqueue/dequeue (or push/pop) workload.
func PairsSpec(pushCode, popCode uint64, prefill uint64) Spec {
	return Spec{Kind: Pairs, PushCode: pushCode, PopCode: popCode, Prefill: prefill}
}

// PrefillOps returns the operations that bring a fresh object to the
// spec's initial occupancy: Prefill distinct keys for sets, Prefill pushed
// values for pairs.
func (s Spec) PrefillOps(seed int64) []uc.Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]uc.Op, 0, s.Prefill)
	switch s.Kind {
	case Set:
		// Insert Prefill distinct keys: every even key, which is exactly 50%
		// occupancy when Prefill == KeyRange/2 and keeps prefill
		// deterministic and duplicate-free.
		for i := uint64(0); i < s.Prefill; i++ {
			k := (i * 2) % s.KeyRange
			ops = append(ops, uc.Insert(k, rng.Uint64()))
		}
	case Pairs:
		for i := uint64(0); i < s.Prefill; i++ {
			ops = append(ops, uc.Op{Code: s.PushCode, A0: rng.Uint64() % (1 << 30)})
		}
	}
	return ops
}

// Gen produces one worker's operation stream.
type Gen struct {
	spec Spec
	rng  *rand.Rand
	zipf *rand.Zipf // non-nil when KeySkew > 1
	flip bool       // Pairs: next op is pop
}

// NewGen creates worker tid's deterministic generator.
func NewGen(spec Spec, seed int64, tid int) *Gen {
	g := &Gen{spec: spec, rng: rand.New(rand.NewSource(seed + int64(tid)*1_000_003))}
	if spec.Kind == Set && spec.KeySkew > 1 {
		g.zipf = rand.NewZipf(g.rng, spec.KeySkew, 1, spec.KeyRange-1)
	}
	return g
}

// Next returns the worker's next operation.
func (g *Gen) Next() uc.Op {
	switch g.spec.Kind {
	case Pairs:
		if g.flip {
			g.flip = false
			return uc.Op{Code: g.spec.PopCode}
		}
		g.flip = true
		return uc.Op{Code: g.spec.PushCode, A0: g.rng.Uint64() % (1 << 30)}
	default:
		roll := g.rng.Intn(100)
		var key uint64
		if g.zipf != nil {
			key = g.zipf.Uint64()
		} else {
			key = g.rng.Uint64() % g.spec.KeyRange
		}
		switch {
		case roll < g.spec.ReadPct:
			return uc.Contains(key)
		case roll < g.spec.ReadPct+(100-g.spec.ReadPct)/2:
			return uc.Insert(key, g.rng.Uint64())
		default:
			return uc.Delete(key)
		}
	}
}
