package workload

import (
	"testing"

	"prepuc/internal/uc"
)

func TestSetMixRatios(t *testing.T) {
	spec := SetSpec(90, 1024)
	g := NewGen(spec, 1, 0)
	reads, inserts, deletes := 0, 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		switch g.Next().Code {
		case uc.OpContains, uc.OpGet:
			reads++
		case uc.OpInsert:
			inserts++
		case uc.OpDelete:
			deletes++
		default:
			t.Fatal("unexpected op")
		}
	}
	if reads < n*85/100 || reads > n*95/100 {
		t.Errorf("reads = %d of %d, want ~90%%", reads, n)
	}
	if diff := inserts - deletes; diff < -n/50 || diff > n/50 {
		t.Errorf("inserts %d vs deletes %d: want balanced", inserts, deletes)
	}
}

func TestSetKeysInRange(t *testing.T) {
	spec := SetSpec(50, 128)
	g := NewGen(spec, 2, 3)
	for i := 0; i < 5000; i++ {
		if op := g.Next(); op.A0 >= 128 {
			t.Fatalf("key %d out of range", op.A0)
		}
	}
}

func TestPairsAlternate(t *testing.T) {
	spec := PairsSpec(uc.OpPush, uc.OpPop, 10)
	g := NewGen(spec, 3, 0)
	for i := 0; i < 100; i++ {
		op := g.Next()
		want := uc.OpPush
		if i%2 == 1 {
			want = uc.OpPop
		}
		if op.Code != want {
			t.Fatalf("op %d = %d, want %d", i, op.Code, want)
		}
	}
}

func TestPrefillSetDistinctKeys(t *testing.T) {
	spec := SetSpec(90, 1000)
	ops := spec.PrefillOps(4)
	if len(ops) != 500 {
		t.Fatalf("prefill %d ops, want 500 (50%%)", len(ops))
	}
	seen := map[uint64]bool{}
	for _, op := range ops {
		if op.Code != uc.OpInsert {
			t.Fatal("prefill op is not insert")
		}
		if seen[op.A0] {
			t.Fatalf("duplicate prefill key %d", op.A0)
		}
		seen[op.A0] = true
	}
}

func TestPrefillPairs(t *testing.T) {
	spec := PairsSpec(uc.OpEnqueue, uc.OpDequeue, 77)
	ops := spec.PrefillOps(5)
	if len(ops) != 77 {
		t.Fatalf("prefill %d ops, want 77", len(ops))
	}
	for _, op := range ops {
		if op.Code != uc.OpEnqueue {
			t.Fatal("pairs prefill must use the push code")
		}
	}
}

func TestGenDeterministicPerSeed(t *testing.T) {
	a := NewGen(SetSpec(50, 100), 9, 4)
	b := NewGen(SetSpec(50, 100), 9, 4)
	for i := 0; i < 200; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewGen(SetSpec(50, 100), 9, 5)
	same := true
	d := NewGen(SetSpec(50, 100), 9, 4)
	for i := 0; i < 50; i++ {
		if c.Next() != d.Next() {
			same = false
		}
	}
	if same {
		t.Error("different tids produced identical streams")
	}
}

// TestKeySkewZipf: with KeySkew on, key 0 dominates far beyond its uniform
// share; with it off, the stream is the uniform one (bit-compatible with
// specs predating the knob).
func TestKeySkewZipf(t *testing.T) {
	spec := SetSpec(0, 1<<16)
	spec.KeySkew = 1.5
	g := NewGen(spec, 7, 0)
	const n = 20000
	zero := 0
	for i := 0; i < n; i++ {
		if g.Next().A0 == 0 {
			zero++
		}
	}
	if zero < n/10 {
		t.Errorf("key 0 drawn %d of %d times; skew not engaging", zero, n)
	}

	uniform := SetSpec(0, 1<<16)
	a, b := NewGen(uniform, 7, 0), NewGen(uniform, 7, 0)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("uniform generator not deterministic")
		}
	}
}
